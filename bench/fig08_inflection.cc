// Figure 8 (a-f) + the Sec. III-B threshold table.
//
// NPB class C on four 2-VM virtual clusters (two nodes, 16-VCPU VMs),
// shortening the global time slice down to 0.03 ms while sampling LLC
// misses (Xenoprof substitute).  Paper shape: execution time keeps falling
// with the slice until a per-application inflection point around 0.2-0.3 ms,
// below which context-switch/cache-refill overhead dominates; the Euclidean
// metric over {0.5, 0.4, 0.3, 0.2, 0.1, 0.03} ms picks 0.3 ms as the uniform
// minimum time-slice threshold (paper distances: 0.034, 0.020, 0.018, 0.049,
// 0.039, 0.069).
#include <map>
#include <vector>

#include "atc/threshold.h"
#include "report_common.h"
#include "cache/xenoprof.h"

using namespace atcsim;
using namespace atcsim::bench;

namespace {

struct Point {
  double exec_s;
  double spin_ms;
  double miss_rate;  // LLC misses per second
};

Point run(const std::string& app, sim::SimTime slice) {
  auto sp = cluster::ScenarioBuilder{}
                .nodes(2)
                .vms_per_node(4)
                .vcpus_per_vm(16)
                .approach(cluster::Approach::kCR)
                .seed(42)
                .allow_wide_vms()
                .build();
  cluster::Scenario& s = *sp;
  cluster::build_type_a(s, app, workload::NpbClass::kC);
  s.start();
  set_global_guest_slice(s, slice);
  s.warmup_and_measure(scaled(1_s), scaled(8_s));
  return Point{s.mean_superstep_with_prefix(app),
               s.avg_parallel_spin_latency() * 1e3, s.llc_miss_rate()};
}

}  // namespace

int main() {
  banner("Figure 8 — performance inflection of short slices (NPB class C) "
         "+ Sec. III-B Euclidean threshold",
         "2 nodes x 4x16-VCPU VMs, four identical virtual clusters");
  const std::vector<sim::SimTime> slices = {30_ms,  6_ms,   1_ms,  500_us,
                                            400_us, 300_us, 200_us, 100_us,
                                            30_us};
  // Normalized exec time per app per candidate slice (the Sec. III-B grid).
  const std::vector<sim::SimTime> candidates = {500_us, 400_us, 300_us,
                                                200_us, 100_us, 30_us};
  std::vector<std::vector<double>> grid(candidates.size());

  for (const auto& app : workload::npb_apps()) {
    metrics::Table t("Fig. 8 (" + app + ".C)",
                     {"time slice", "normalized exec time",
                      "avg spin latency (ms)", "LLC misses/s"});
    double baseline = 0.0;
    std::map<sim::SimTime, double> norm;
    for (sim::SimTime slice : slices) {
      const Point p = run(app, slice);
      if (baseline == 0.0) baseline = p.exec_s;
      norm[slice] = p.exec_s / baseline;
      t.add_row({metrics::fmt_ms(sim::to_millis(slice)),
                 metrics::fmt(p.exec_s / baseline), metrics::fmt(p.spin_ms, 2),
                 metrics::fmt(p.miss_rate / 1e6, 1) + "M"});
    }
    t.print(std::cout);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      grid[c].push_back(norm[candidates[c]]);
    }
  }

  const atc::ThresholdResult result =
      atc::optimize_threshold(candidates, grid);
  metrics::Table t("Sec. III-B: Euclidean metric D(O,P) per candidate slice",
                   {"time slice", "D(O,P)"});
  for (const auto& c : result.candidates) {
    t.add_row({metrics::fmt_ms(sim::to_millis(c.slice)),
               metrics::fmt(c.distance)});
  }
  t.print(std::cout);
  std::printf("selected minimum time-slice threshold: %s (paper: 0.3ms, "
              "D=0.018)\n",
              metrics::fmt_ms(sim::to_millis(result.best_slice)).c_str());
  return 0;
}
