// Figure 14: CPU-intensive SPEC applications (gcc, bzip2, sphinx3) in the
// mixed scenario.
//
// Paper shape: CS and ATC(6ms) degrade CPU-bound apps (VM preemption /
// extra context switches); BS, VS, DSS and ATC(30ms) approximate CR.
#include "mixed_common.h"

using namespace atcsim;
using namespace atcsim::bench;

int main() {
  banner("Figure 14 — SPEC CPU applications in the mixed scenario",
         "32 nodes, type-B virtual clusters + non-parallel independents");
  const std::map<std::string, MixedResult> results = run_mixed_all();
  const MixedResult& cr = results.at("CR");
  const auto& layout = cr.layout;

  metrics::Table t("Fig. 14: normalized execution time vs CR (1 = CR, "
                   "higher is worse)",
                   {"application", "BS", "CS", "DSS", "VS", "ATC(30ms)",
                    "ATC(6ms)"});
  for (const char* app : {"gcc", "bzip2", "sphinx3"}) {
    const double base = mean_of(cr.rates, layout.cpu_keys, app);
    std::vector<std::string> row = {app};
    for (const char* label :
         {"BS", "CS", "DSS", "VS", "ATC(30ms)", "ATC(6ms)"}) {
      const double rate =
          mean_of(results.at(label).rates, layout.cpu_keys, app);
      row.push_back(rate > 0 ? metrics::fmt(base / rate) : "n/a");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  metrics::Table pt("ping RTT (ms) across approaches", {"approach", "ms"});
  for (const MixedVariant& v : mixed_variants()) {
    pt.add_row({v.label,
                metrics::fmt(mean_of(results.at(v.label).ping_rtt,
                                     layout.ping_keys) *
                                 1e3,
                             2)});
  }
  pt.print(std::cout);
  std::printf("expected shape: CS and ATC(6ms) columns > 1; BS/VS/DSS/"
              "ATC(30ms) ~ 1\n");
  return 0;
}
