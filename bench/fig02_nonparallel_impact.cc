// Figure 2: impact of Co-Scheduling (CS) on non-parallel applications.
//
// Two nodes, three 2-VM virtual clusters (NPB), and two non-parallel VMs
// hosting bonnie++, sphinx3, stream and ping.  Paper shape: under CS, ping
// RTT is ~1.75x CR, sphinx3 ~1.11x slower, stream slightly slower, bonnie++
// roughly unaffected.
#include "report_common.h"

using namespace atcsim;
using namespace atcsim::bench;

namespace {

struct FigResult {
  double bonnie_mbps = 0;
  double sphinx_rate = 0;
  double stream_mbps = 0;
  double ping_rtt_s = 0;
};

FigResult run(cluster::Approach a) {
  auto sp = cluster::ScenarioBuilder{}
                .nodes(2)
                .vms_per_node(5)  // 3 cluster VMs + 2 app VMs per node
                .approach(a)
                .seed(7)
                .build();
  cluster::Scenario& s = *sp;
  for (int j = 0; j < 3; ++j) {
    auto vms = s.create_cluster_vms("vc" + std::to_string(j), {0, 1});
    const auto& apps = workload::npb_apps();
    s.add_bsp_app("vc" + std::to_string(j),
                  workload::npb_profile(apps[static_cast<std::size_t>(j)],
                                        workload::NpbClass::kB),
                  std::move(vms));
  }
  s.add_disk_vm(0, "bonnie");
  s.add_cpu_vm(0, workload::CpuBoundWorkload::sphinx3(), "sphinx3");
  s.add_cpu_vm(1, workload::CpuBoundWorkload::stream(), "stream");
  s.add_ping_pair(1, 0, "ping");
  s.start();
  s.warmup_and_measure(scaled(2_s), scaled(6_s));
  FigResult r;
  r.bonnie_mbps = s.metrics().rate("bonnie").per_second();
  r.sphinx_rate = s.metrics().rate("sphinx3").per_second();
  r.stream_mbps = s.metrics().rate("stream").per_second();
  r.ping_rtt_s = s.metrics().latency("ping").mean_seconds();
  return r;
}

}  // namespace

int main() {
  banner("Figure 2 — CS impact on non-parallel applications",
         "2 nodes, 3 virtual clusters + bonnie++/sphinx3/stream/ping VMs");
  const FigResult cr = run(cluster::Approach::kCR);
  const FigResult cs = run(cluster::Approach::kCS);
  metrics::Table t("Fig. 2: non-parallel metrics, CS normalized to CR",
                   {"application", "metric", "CR", "CS", "CS/CR"});
  t.add_row({"bonnie++", "throughput (MB/s)", metrics::fmt(cr.bonnie_mbps, 1),
             metrics::fmt(cs.bonnie_mbps, 1),
             metrics::fmt(cs.bonnie_mbps / cr.bonnie_mbps)});
  t.add_row({"sphinx3", "norm. exec time", "1.000",
             metrics::fmt(cr.sphinx_rate / cs.sphinx_rate),
             metrics::fmt(cr.sphinx_rate / cs.sphinx_rate)});
  t.add_row({"stream", "bandwidth (MB/s)", metrics::fmt(cr.stream_mbps, 0),
             metrics::fmt(cs.stream_mbps, 0),
             metrics::fmt(cs.stream_mbps / cr.stream_mbps)});
  t.add_row({"ping", "RTT (ms)", metrics::fmt(cr.ping_rtt_s * 1e3, 2),
             metrics::fmt(cs.ping_rtt_s * 1e3, 2),
             metrics::fmt(cs.ping_rtt_s / cr.ping_rtt_s)});
  t.print(std::cout);
  std::printf("expected shape: ping RTT and sphinx3 exec time clearly worse "
              "under CS (paper: 1.75x / 1.11x); bonnie++ ~unchanged\n");
  return 0;
}
