// pdes_report: tracked speedup trajectory for the sharded conservative-PDES
// engine (DESIGN.md §10) on the cluster-scale macro.
//
// The workload is the paper's 512-node type-A evaluation cell (four LU.B
// virtual clusters per node group, ATC controllers, full network) run
// through cluster::ScenarioBuilder at shards = 1, 2, 4 and 8.  For every
// shard count the report records both:
//
//  * measured — events per wall second on this host.  On a machine with
//    fewer cores than shards the round phases serialize, so this number
//    mostly shows that sharding costs little even when it cannot win;
//  * projected — the same run re-timed on the critical path: the
//    ShardGroup accounts, per round, the summed advance time of all shards
//    (serial_s) and the slowest single shard (critical_s), so
//    `projected_wall_s = wall_s - serial_s + critical_s` is the wall time a
//    host with >= K free cores cannot beat and a perfectly balanced one
//    achieves.  "speedup_projected.sK" = measured s1 wall / projected sK
//    wall.
//
//   pdes_report                         # print the run record to stdout
//   pdes_report --label x --append ../BENCH_pdes.json
//   pdes_report --quick                 # 128 nodes, shards {1,2} (CI smoke)
//   pdes_report --shards 4              # cap the shard sweep
//   pdes_report --threads 1,2,4         # also sweep worker threads at the
//                                       # top shard count (t-suffixed keys)
//   pdes_report --large                 # add a 4096-node point at the top
//                                       # shard count (50 ms window)
//   pdes_report --xl                    # add a 16384-node point (10 ms
//                                       # window; 2048 nodes under --quick
//                                       # so CI smoke stays runnable)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report_common.h"
#include "simcore/shard.h"

namespace {

using namespace atcsim;
namespace rb = atcsim::bench;
using namespace sim::time_literals;

struct ShardRun {
  int shards = 1;
  std::size_t threads = 0;      // 0 = auto (min(shards, host cores))
  std::uint64_t events = 0;
  double wall_s = 0;            // best-of-N measured wall (this host)
  std::uint64_t rounds = 0;
  std::uint64_t horizon_extensions = 0;  // EOT horizons past the classic bound
  double critical_s = 0;        // sum over rounds of the slowest shard
  double serial_s = 0;          // sum over rounds of all shards' advance work
  double barrier_wait_s = 0;    // coordinator join-wait (fork-join overhead)
  double projected_wall_s = 0;  // wall_s - serial_s + critical_s
  std::uint64_t bound_recomputes = 0;  // effect-bound VM recomputations
  std::uint64_t bound_cache_hits = 0;  // dirty-ring skips (cached bounds)
};

/// One timed execution of the macro at `shards`; construction/teardown of
/// the K engine stacks stays outside the timed window.
ShardRun run_macro(int shards, std::size_t threads, int nodes,
                   sim::SimTime duration, int reps) {
  ShardRun best;
  best.shards = shards;
  best.threads = threads;
  best.wall_s = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    auto s = cluster::ScenarioBuilder{}
                 .nodes(nodes)
                 .pcpus_per_node(8)
                 .vms_per_node(4)
                 .vcpus_per_vm(8)
                 .approach(cluster::Approach::kATC)
                 .seed(7)
                 .shards(shards)
                 .shard_threads(threads)
                 .build();
    cluster::build_type_a(*s, "lu", workload::NpbClass::kB);
    s->start();
    const auto t0 = rb::Clock::now();
    s->run_for(duration);
    const double wall =
        std::chrono::duration<double>(rb::Clock::now() - t0).count();
    if (wall < best.wall_s) {
      best.wall_s = wall;
      best.events = s->events_executed();
      if (const sim::ShardGroup* g = s->shard_group()) {
        best.rounds = g->stats().rounds;
        best.horizon_extensions = g->stats().horizon_extensions;
        best.critical_s = g->stats().critical_s;
        best.serial_s = g->stats().serial_s;
        best.barrier_wait_s = g->stats().barrier_wait_s;
        best.bound_recomputes = g->stats().bound_recomputes;
        best.bound_cache_hits = g->stats().bound_cache_hits;
      }
    }
  }
  // Unsharded runs have no round accounting: the projection is the
  // measurement.  (critical_s <= serial_s always, so projected <= wall.)
  best.projected_wall_s = best.wall_s - best.serial_s + best.critical_s;
  return best;
}

void emit_shard_run(std::ostringstream& os, int nodes, const ShardRun& r,
                    bool last) {
  const double per_sec =
      r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  const double projected_per_sec =
      r.projected_wall_s > 0
          ? static_cast<double>(r.events) / r.projected_wall_s
          : 0;
  os << "      \"macro_lu" << nodes << "_s" << r.shards;
  if (r.threads != 0) os << "_t" << r.threads;
  os << "\": {\"per_sec\": " << rb::json_number(per_sec)
     << ", \"events\": " << r.events
     << ", \"wall_s\": " << rb::json_number(r.wall_s)
     << ", \"rounds\": " << r.rounds
     << ", \"horizon_extensions\": " << r.horizon_extensions
     << ", \"critical_s\": " << rb::json_number(r.critical_s)
     << ", \"serial_s\": " << rb::json_number(r.serial_s)
     << ", \"barrier_wait_s\": " << rb::json_number(r.barrier_wait_s)
     << ", \"projected_wall_s\": " << rb::json_number(r.projected_wall_s)
     << ", \"projected_per_sec\": " << rb::json_number(projected_per_sec)
     << ", \"bound_recomputes\": " << r.bound_recomputes
     << ", \"bound_cache_hits\": " << r.bound_cache_hits
     << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "dev";
  std::string append_path;
  bool quick = false;
  bool large = false;
  bool xl = false;
  int max_shards = 8;
  std::vector<std::size_t> thread_sweep;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--append" && i + 1 < argc) {
      append_path = argv[++i];
    } else if (a == "--quick") {
      quick = true;  // small macro, shards {1,2}: CI smoke on tiny runners
    } else if (a == "--large") {
      large = true;  // 4096-node point at the top shard count
    } else if (a == "--xl") {
      xl = true;  // 16384-node point (2048 under --quick)
    } else if (a == "--shards" && i + 1 < argc) {
      max_shards = std::atoi(argv[++i]);
    } else if (a == "--threads" && i + 1 < argc) {
      std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) {
          thread_sweep.push_back(
              static_cast<std::size_t>(std::atoi(tok.c_str())));
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label str] [--append BENCH_pdes.json] "
                   "[--quick] [--large] [--xl] [--shards K] "
                   "[--threads T1,T2,...]\n",
                   argv[0]);
      return 2;
    }
  }

  const int nodes = quick ? 128 : 512;
  const sim::SimTime duration = quick ? 100_ms : 250_ms;
  const int reps = quick ? 1 : 2;
  if (quick && max_shards > 2) max_shards = 2;

  std::vector<ShardRun> runs;
  for (int shards : {1, 2, 4, 8}) {
    if (shards > max_shards) break;
    std::fprintf(stderr, "pdes_report: macro_lu%d_s%d...\n", nodes, shards);
    runs.push_back(run_macro(shards, /*threads=*/0, nodes, duration, reps));
  }

  // Thread sweep at the top shard count: same simulation (the merged
  // outcome is thread-count invariant), different host-side parallelism —
  // the number that actually measures the pool and barrier on >1 cores.
  std::vector<ShardRun> thread_runs;
  const int top_shards = runs.back().shards;
  for (std::size_t t : thread_sweep) {
    if (t == 0 || t > static_cast<std::size_t>(top_shards) || top_shards < 2) {
      continue;
    }
    std::fprintf(stderr, "pdes_report: macro_lu%d_s%d_t%zu...\n", nodes,
                 top_shards, t);
    thread_runs.push_back(run_macro(top_shards, t, nodes, duration, reps));
  }

  // The 4096-node point: 8x the standard macro, a shorter window so the
  // report stays runnable on laptop-class hosts.
  std::vector<ShardRun> large_runs;
  if (large) {
    const int ln = 4096;
    for (int shards : {1, top_shards}) {
      if (shards > max_shards) break;
      std::fprintf(stderr, "pdes_report: macro_lu%d_s%d...\n", ln, shards);
      large_runs.push_back(
          run_macro(shards, /*threads=*/0, ln, 50_ms, /*reps=*/1));
      if (top_shards == 1) break;
    }
  }

  // The --xl point: the 10k+-host scale the incremental effect-time index
  // exists for.  16384 nodes with a 10 ms window keeps the wall time in the
  // same ballpark as the standard macro (round cost is O(changed), so the
  // window, not the cluster, dominates); under --quick it shrinks to 2048
  // nodes so the CI perf-smoke job can afford it on tiny runners.
  std::vector<ShardRun> xl_runs;
  const int xl_nodes = quick ? 2048 : 16384;
  if (xl) {
    for (int shards : {1, top_shards}) {
      if (shards > max_shards) break;
      std::fprintf(stderr, "pdes_report: macro_lu%d_s%d...\n", xl_nodes,
                   shards);
      xl_runs.push_back(
          run_macro(shards, /*threads=*/0, xl_nodes, 10_ms, /*reps=*/1));
      if (top_shards == 1) break;
    }
  }

  std::ostringstream run;
  run << "    {\n"
      << "      \"label\": \"" << label << "\",\n"
      << "      \"date\": \"" << rb::iso_now() << "\",\n"
      << "      \"build_type\": \"" << ATCSIM_BUILD_TYPE << "\",\n"
      << "      \"host_cores\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "      \"nodes\": " << nodes << ",\n"
      << "      \"sim_ms\": " << duration / 1'000'000 << ",\n"
      << "      \"methodology\": \"projected_wall_s = wall_s - serial_s + "
         "critical_s: the summed advance time of all shards is replaced by "
         "the per-round slowest shard, the span a host with >= K cores "
         "cannot beat; measured numbers are from this host_cores host\",\n";
  for (const ShardRun& r : runs) emit_shard_run(run, nodes, r, false);
  for (const ShardRun& r : thread_runs) emit_shard_run(run, nodes, r, false);
  for (const ShardRun& r : large_runs) emit_shard_run(run, 4096, r, false);
  for (const ShardRun& r : xl_runs) emit_shard_run(run, xl_nodes, r, false);
  const double base_wall = runs.front().wall_s;
  run << "      \"speedup_measured\": {";
  for (std::size_t i = 1; i < runs.size(); ++i) {
    run << (i > 1 ? ", " : "") << "\"s" << runs[i].shards
        << "\": " << rb::json_number(base_wall / runs[i].wall_s);
  }
  run << "},\n      \"speedup_projected\": {";
  for (std::size_t i = 1; i < runs.size(); ++i) {
    run << (i > 1 ? ", " : "") << "\"s" << runs[i].shards
        << "\": " << rb::json_number(base_wall / runs[i].projected_wall_s);
  }
  run << "}\n    }";

  if (append_path.empty()) {
    std::printf("%s\n", run.str().c_str());
    return 0;
  }
  rb::append_history(append_path, run.str(), "pdes");
  std::fprintf(stderr, "pdes_report: wrote %s\n", append_path.c_str());
  return 0;
}
