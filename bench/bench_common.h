// Shared helpers for the figure-reproduction harnesses.
//
// Every bench binary regenerates one table/figure of the paper.  Durations
// default to values that finish in seconds; set ATCSIM_BENCH_SCALE=N (e.g. 3)
// to multiply the measurement windows for tighter statistics.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluster/scenario.h"
#include "cluster/scenarios.h"
#include "metrics/report.h"

namespace atcsim::bench {

using namespace sim::time_literals;

inline double scale_factor() {
  const char* env = std::getenv("ATCSIM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline sim::SimTime scaled(sim::SimTime base) {
  return static_cast<sim::SimTime>(static_cast<double>(base) *
                                   scale_factor());
}

inline void banner(const std::string& what, const std::string& setup) {
  std::printf("atcsim bench: %s\n  setup: %s\n  (simulated platform; shapes "
              "reproduce the paper, absolute values are model-relative)\n\n",
              what.c_str(), setup.c_str());
}

/// Sets a fixed time slice on every guest VM (the Sec. II / Fig. 5 global
/// "xl sched-credit -t"-style sweep control).
inline void set_global_guest_slice(cluster::Scenario& s, sim::SimTime slice) {
  for (std::size_t i = 0; i < s.platform().vm_count(); ++i) {
    virt::Vm& vm = s.platform().vm(virt::VmId{static_cast<int>(i)});
    if (!vm.is_dom0()) vm.set_time_slice(slice);
  }
}

}  // namespace atcsim::bench
