// Thin wrapper for the figure-reproduction harnesses.
//
// The real helpers live in the experiment-runner library (src/exp/): sweep
// declaration + parallel cached execution in exp/runner.h, JSONL/CSV output
// in exp/emit.h, and the scale/banner/slice utilities in exp/bench_util.h.
#pragma once

#include <cstdio>
#include <iostream>

#include "cluster/scenario.h"
#include "cluster/scenarios.h"
#include "exp/bench_util.h"
#include "exp/emit.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace atcsim::bench {

using namespace sim::time_literals;

using exp::banner;
using exp::scale_factor;
using exp::scaled;
using exp::set_global_guest_slice;

}  // namespace atcsim::bench
