// Figure 13: I/O and latency-sensitive applications in the mixed scenario —
// bonnie++ throughput, stream bandwidth, and web-server performance.
//
// Paper shape: bonnie++ ~unaffected under every approach; stream slightly
// worse under CS and ATC(6ms) (extra cache flushes); web-server performance
// collapses under CS (~0.35x CR) and *improves* under VS, DSS and ATC(6ms)
// (higher scheduling frequency -> shorter response time).
#include "mixed_common.h"

using namespace atcsim;
using namespace atcsim::bench;

int main() {
  banner("Figure 13 — bonnie++/stream/web in the mixed scenario",
         "32 nodes, type-B virtual clusters + non-parallel independents");
  const std::map<std::string, MixedResult> results = run_mixed_all();
  const MixedResult& cr = results.at("CR");
  const auto& layout = cr.layout;

  const double cr_bonnie = mean_of(cr.rates, layout.disk_keys);
  const double cr_stream = mean_of(cr.rates, layout.stream_keys);
  const double cr_web = mean_of(cr.web_resp, layout.web_keys);

  metrics::Table t("Fig. 13: normalized performance vs CR "
                   "(>1 is better for throughput rows; web row = CR response "
                   "time / response time, >1 is faster)",
                   {"metric", "BS", "CS", "DSS", "VS", "ATC(30ms)",
                    "ATC(6ms)"});
  std::vector<std::string> bonnie_row = {"bonnie++ throughput"};
  std::vector<std::string> stream_row = {"stream bandwidth"};
  std::vector<std::string> web_row = {"web performance"};
  for (const char* label :
       {"BS", "CS", "DSS", "VS", "ATC(30ms)", "ATC(6ms)"}) {
    const MixedResult& r = results.at(label);
    bonnie_row.push_back(
        metrics::fmt(mean_of(r.rates, layout.disk_keys) / cr_bonnie));
    stream_row.push_back(
        metrics::fmt(mean_of(r.rates, layout.stream_keys) / cr_stream));
    web_row.push_back(
        metrics::fmt(cr_web / mean_of(r.web_resp, layout.web_keys)));
  }
  t.add_row(std::move(bonnie_row));
  t.add_row(std::move(stream_row));
  t.add_row(std::move(web_row));
  t.print(std::cout);

  metrics::Table rt("web-server mean response time (ms)", {"approach", "ms"});
  for (const MixedVariant& v : mixed_variants()) {
    rt.add_row({v.label,
                metrics::fmt(
                    mean_of(results.at(v.label).web_resp, layout.web_keys) *
                        1e3,
                    2)});
  }
  rt.print(std::cout);
  std::printf("expected shape: bonnie++ row ~1 everywhere; stream dips under "
              "CS/ATC(6ms); web under CS ~0.35, web under VS/DSS/ATC(6ms) "
              "> 1\n");
  return 0;
}
