// Figure 10: evaluation type A — the same parallel application on four
// identical virtual clusters, scaling from 2 to 32 physical nodes, under
// BS, CS, DSS and ATC (normalized to CR).
//
// Paper shape: ATC best and flat across scales (e.g. lu 0.15 at 8 nodes);
// CS between BS and ATC and degrading with scale; BS only marginally better
// than CR; DSS between CS and ATC.
#include "bench_common.h"

using namespace atcsim;
using namespace atcsim::bench;

namespace {

double run(const std::string& app, cluster::Approach a, int nodes) {
  cluster::Scenario::Setup setup;
  setup.nodes = nodes;
  setup.approach = a;
  setup.seed = 42;
  cluster::Scenario s(setup);
  cluster::build_type_a(s, app, workload::NpbClass::kB);
  s.start();
  s.warmup_and_measure(scaled(2_s), scaled(5_s));
  return s.mean_superstep_with_prefix(app);
}

}  // namespace

int main() {
  banner("Figure 10 — type A: same app on four virtual clusters, 2-32 nodes",
         "N nodes x 4x8-VCPU VMs (4:1), normalized execution time vs CR");
  const std::vector<cluster::Approach> approaches = {
      cluster::Approach::kBS, cluster::Approach::kCS, cluster::Approach::kDSS,
      cluster::Approach::kATC};
  const std::vector<int> scales = {2, 4, 8, 16, 32};

  for (const auto& app : workload::npb_apps()) {
    metrics::Table t("Fig. 10 (" + app + ".B): normalized exec time vs CR",
                     {"nodes", "BS", "CS", "DSS", "ATC"});
    for (int nodes : scales) {
      const double cr = run(app, cluster::Approach::kCR, nodes);
      std::vector<std::string> row = {std::to_string(nodes)};
      for (cluster::Approach a : approaches) {
        row.push_back(metrics::fmt(run(app, a, nodes) / cr));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  std::printf("expected shape: ATC lowest and ~flat; CS rises with scale; "
              "BS close to 1 (paper example, lu @ 8 nodes: BS 0.85, CS 0.38, "
              "ATC 0.15)\n");
  return 0;
}
