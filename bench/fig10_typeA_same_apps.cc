// Figure 10: evaluation type A — the same parallel application on four
// identical virtual clusters, scaling from 2 to 32 physical nodes, under
// BS, CS, DSS and ATC (normalized to CR).
//
// Paper shape: ATC best and flat across scales (e.g. lu 0.15 at 8 nodes);
// CS between BS and ATC and degrading with scale; BS only marginally better
// than CR; DSS between CS and ATC.
//
// The (app x approach x nodes) grid — CR baselines included — runs through
// the experiment runner: parallel across host cores and cached on disk.
#include <map>
#include <utility>

#include "report_common.h"

using namespace atcsim;
using namespace atcsim::bench;

int main(int argc, char** argv) {
  banner("Figure 10 — type A: same app on four virtual clusters, 2-32 nodes",
         "N nodes x 4x8-VCPU VMs (4:1), normalized execution time vs CR");
  const std::vector<cluster::Approach> columns = {
      cluster::Approach::kBS, cluster::Approach::kCS, cluster::Approach::kDSS,
      cluster::Approach::kATC};

  exp::SweepSpec spec;
  spec.name = "fig10_typeA_same_apps";
  spec.trace = exp::trace_requested(argc, argv);
  spec.apps = workload::npb_apps();
  spec.classes = {workload::NpbClass::kB};
  spec.approaches = {cluster::Approach::kCR, cluster::Approach::kBS,
                     cluster::Approach::kCS, cluster::Approach::kDSS,
                     cluster::Approach::kATC};
  spec.nodes = {2, 4, 8, 16, 32};
  spec.vcpus_per_vm = {8};
  spec.seeds = {42};
  spec.warmup = scaled(2_s);
  spec.measure = scaled(5_s);

  const auto results = exp::run_sweep(
      spec, [](const exp::Trial& t) { return exp::run_type_a_trial(t); });
  const auto trials = exp::expand(spec);
  std::map<std::pair<std::string, std::pair<int, int>>, double> exec;
  for (const exp::Trial& t : trials) {
    exec[{t.app, {static_cast<int>(t.approach), t.nodes}}] =
        results[static_cast<std::size_t>(t.id)].metrics.at("superstep_s");
  }
  auto cell = [&](const std::string& app, cluster::Approach a, int nodes) {
    return exec.at({app, {static_cast<int>(a), nodes}});
  };

  for (const auto& app : spec.apps) {
    metrics::Table t("Fig. 10 (" + app + ".B): normalized exec time vs CR",
                     {"nodes", "BS", "CS", "DSS", "ATC"});
    for (int nodes : spec.nodes) {
      const double cr = cell(app, cluster::Approach::kCR, nodes);
      std::vector<std::string> row = {std::to_string(nodes)};
      for (cluster::Approach a : columns) {
        row.push_back(metrics::fmt(cell(app, a, nodes) / cr));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  std::printf("expected shape: ATC lowest and ~flat; CS rises with scale; "
              "BS close to 1 (paper example, lu @ 8 nodes: BS 0.85, CS 0.38, "
              "ATC 0.15)\n");
  exp::emit_results_env(spec, results);
  return 0;
}
