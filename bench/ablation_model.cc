// Ablation study of the model mechanisms DESIGN.md calls out.
//
// Each row removes (or enables) one mechanism and reports its effect on the
// core experiment (lu.B, 4 nodes, CR vs ATC) — evidence that each piece of
// the substrate is load-bearing:
//   * cache model off        -> the Fig. 8 inflection disappears
//   * wake preemption on     -> boosted wakes preempt mid-slice (credit-1
//                               "tickle"); shrinks CR's I/O waits
//   * no tick preemption     -> under-served VMs wait whole slices
//   * coarse jitter          -> straggler spread dominates sub-ms slices
#include "report_common.h"

using namespace atcsim;
using namespace atcsim::bench;

namespace {

struct Outcome {
  double cr_ms;
  double atc_ms;
  double atc_003_ms;  // fixed 0.03ms global slice under CR machinery
};

Outcome run(const virt::ModelParams& params) {
  Outcome o{};
  auto one = [&](cluster::Approach a, sim::SimTime forced_slice) {
    auto sp = cluster::ScenarioBuilder{}
                  .nodes(4)
                  .approach(a)
                  .seed(42)
                  .params(params)
                  .build();
    cluster::Scenario& s = *sp;
    cluster::build_type_a(s, "lu", workload::NpbClass::kB);
    s.start();
    if (forced_slice > 0) set_global_guest_slice(s, forced_slice);
    s.warmup_and_measure(scaled(2_s), scaled(4_s));
    return s.mean_superstep_with_prefix("lu.B") * 1e3;
  };
  o.cr_ms = one(cluster::Approach::kCR, 0);
  o.atc_ms = one(cluster::Approach::kATC, 0);
  o.atc_003_ms = one(cluster::Approach::kCR, 30_us);
  return o;
}

}  // namespace

int main() {
  banner("Ablation — which model mechanisms carry the result",
         "lu.B, 4 nodes x 4x8-VCPU VMs; CR vs ATC vs fixed 0.03ms slice");
  metrics::Table t("ablations (superstep ms; gain = CR/ATC)",
                   {"variant", "CR", "ATC", "gain", "fixed 0.03ms"});

  auto add = [&](const std::string& name, const virt::ModelParams& p) {
    const Outcome o = run(p);
    t.add_row({name, metrics::fmt(o.cr_ms, 1), metrics::fmt(o.atc_ms, 1),
               metrics::fmt(o.cr_ms / o.atc_ms, 1),
               metrics::fmt(o.atc_003_ms, 1)});
  };

  virt::ModelParams base;
  add("baseline", base);

  virt::ModelParams no_cache = base;
  no_cache.cache_refill_penalty = 0;
  no_cache.context_switch_cost = 0;
  add("no cache/switch cost", no_cache);

  virt::ModelParams wakep = base;
  wakep.wake_preemption = true;
  add("wake preemption on", wakep);

  virt::ModelParams no_tick = base;
  no_tick.tick_period = 10 * sim::kSecond;  // effectively off
  add("no tick preemption", no_tick);

  virt::ModelParams slow_net = base;
  slow_net.nic_bandwidth_bps = 12.5e6;  // 100 Mbps fabric
  add("100Mbps fabric", slow_net);

  t.print(std::cout);
  std::printf("reading: 'no cache/switch cost' removes the 0.03ms blowup "
              "(Fig. 8's inflection is the cache model); the ATC gain itself "
              "is a queueing effect and survives every ablation\n");
  return 0;
}
