// Extensions bench: the paper's Sec. VI future-work items, implemented and
// measured against the published design.
//
//  1. Non-intrusive monitoring (auto_classify): ATC driven purely by
//     VMM-visible spin behaviour, with every guest VM's declared type
//     ignored — compared to admin-declared ATC.
//  2. Flexible non-parallel slices (adaptive_nonparallel): web-like VMs are
//     detected by wake-up rate and given a shorter slice automatically
//     (instead of the static admin interface), CPU VMs keep the default.
#include "report_common.h"

using namespace atcsim;
using namespace atcsim::bench;

namespace {

struct Row {
  double parallel_ms = 0;
  double web_ms = 0;
  double web_p95_ms = 0;
  double cpu_rate = 0;
};

Row run(cluster::Approach a, const atc::AtcConfig& atc_cfg) {
  auto sp = cluster::ScenarioBuilder{}
                .nodes(4)
                .approach(a)
                .seed(21)
                .atc(atc_cfg)
                .build();
  cluster::Scenario& s = *sp;
  // Two 4-VM clusters + web + sphinx3 + two single-VM parallel apps.
  for (int j = 0; j < 2; ++j) {
    auto vms = s.create_cluster_vms("vc" + std::to_string(j), {0, 1, 2, 3});
    s.add_bsp_app("vc" + std::to_string(j),
                  workload::npb_profile(j == 0 ? "lu" : "cg",
                                        workload::NpbClass::kB),
                  std::move(vms));
  }
  s.add_web_vm(0, 80.0, "web");
  s.add_cpu_vm(1, workload::CpuBoundWorkload::sphinx3(), "sphinx3");
  auto ivm0 = s.create_cluster_vms("ivm0", {2});
  s.add_bsp_app("ivm0", workload::npb_profile("lu", workload::NpbClass::kB),
                std::move(ivm0));
  auto ivm1 = s.create_cluster_vms("ivm1", {3});
  s.add_bsp_app("ivm1", workload::npb_profile("is", workload::NpbClass::kB),
                std::move(ivm1));
  s.start();
  s.warmup_and_measure(scaled(3_s), scaled(5_s));
  Row r;
  r.parallel_ms = (s.mean_superstep("vc0") + s.mean_superstep("vc1")) / 2 * 1e3;
  r.web_ms = s.metrics().latency("web").mean_seconds() * 1e3;
  r.web_p95_ms = s.metrics().latency("web").p95_seconds() * 1e3;
  r.cpu_rate = s.metrics().rate("sphinx3").per_second();
  return r;
}

}  // namespace

int main() {
  banner("Extensions — Sec. VI future work, measured",
         "4 nodes: 2 virtual clusters + web + sphinx3 + independent VMs");

  atc::AtcConfig declared;  // the published design (admin declares types)
  atc::AtcConfig classified;
  classified.auto_classify = true;
  atc::AtcConfig adaptive;
  adaptive.auto_classify = true;
  adaptive.adaptive_nonparallel = true;

  const Row cr = run(cluster::Approach::kCR, declared);
  const Row atc = run(cluster::Approach::kATC, declared);
  const Row atc_cls = run(cluster::Approach::kATC, classified);
  const Row atc_full = run(cluster::Approach::kATC, adaptive);

  metrics::Table t("future-work extensions vs published ATC",
                   {"variant", "parallel superstep (ms)", "web mean (ms)",
                    "web p95 (ms)", "sphinx3 rate"});
  auto add = [&](const char* name, const Row& r) {
    t.add_row({name, metrics::fmt(r.parallel_ms, 1), metrics::fmt(r.web_ms, 2),
               metrics::fmt(r.web_p95_ms, 2), metrics::fmt(r.cpu_rate)});
  };
  add("CR", cr);
  add("ATC (declared types)", atc);
  add("ATC + auto-classify", atc_cls);
  add("ATC + auto-classify + adaptive non-parallel", atc_full);
  t.print(std::cout);
  std::printf("expected: auto-classify matches declared ATC (no admin input "
              "needed); adaptive non-parallel trims web latency further "
              "while sphinx3 stays at its CR rate\n");
  return 0;
}
