// ctrl_report: the cluster-control-plane headline experiment (DESIGN.md
// §12) — ATC time-slice control vs placement-based mitigation vs both,
// at 512 hosts.
//
// The workload is the mixed evaluation cell (Sec. IV-C shape scaled up):
// trace-synthesized parallel virtual clusters sharing every host with web
// servers, disk writers, STREAM/gcc/bzip2/sphinx3 CPU hogs and ping VMs.
// The CPU-bound guests are live-migratable, so the placement controller
// (Approach::kPM) has real freedom while the BSP ranks stay pinned — the
// paper's setting, where time-slice control is the only knob that helps
// the parallel apps directly and placement relieves the cache pressure
// around them.
//
// Per approach the record keeps the metrics the controllers move:
//
//  * vc_superstep_s   — mean superstep over every virtual cluster ("VC*"),
//                       the parallel-application figure of merit;
//  * spin_latency_s   — wall spin latency per synchronization episode
//                       averaged over all parallel VMs;
//  * llc_miss_rate    — platform-wide LLC misses per simulated second;
//  * migrations       — live migrations started (0 unless kPM/kATCPM);
//  * events / wall_s  — simulator throughput on this host.
//
// plus a "vs_cr" block normalizing each approach's superstep to the CR
// baseline (paper convention: CR = 1, smaller is better).  The kATCPM
// point is also re-run sharded (s4) to exercise the control plane through
// the conservative-PDES path: the rebalancer is cell-local by design, so
// the sharded point is a separate record, not a determinism check (those
// live in pdes_invariance_test with scripted moves).
//
//   ctrl_report                          # print the run record to stdout
//   ctrl_report --label x --append ../BENCH_ctrl.json
//   ctrl_report --quick                  # 64 hosts, short windows (CI)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report_common.h"

namespace {

using namespace atcsim;
namespace rb = atcsim::bench;
using namespace sim::time_literals;

struct CtrlRun {
  cluster::Approach approach = cluster::Approach::kCR;
  int shards = 1;
  double vc_superstep_s = 0;
  double spin_latency_s = 0;
  double llc_miss_rate = 0;
  std::uint64_t migrations = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
};

CtrlRun run_cell(cluster::Approach a, int shards, int nodes,
                 sim::SimTime warmup, sim::SimTime measure) {
  auto sp = cluster::ScenarioBuilder{}
                .nodes(nodes)
                .approach(a)
                .seed(97)
                .shards(shards)
                .build();
  cluster::Scenario& s = *sp;
  cluster::build_mixed(s);
  s.start();
  const auto t0 = rb::Clock::now();
  s.warmup_and_measure(warmup, measure);
  CtrlRun r;
  r.approach = a;
  r.shards = shards;
  r.wall_s = std::chrono::duration<double>(rb::Clock::now() - t0).count();
  r.vc_superstep_s = s.mean_superstep_with_prefix("VC");
  r.spin_latency_s = s.avg_parallel_spin_latency();
  r.llc_miss_rate = s.llc_miss_rate();
  r.events = s.events_executed();
  for (int k = 0; k < s.shard_count(); ++k) {
    r.migrations += s.migrator(k).migrations_started();
  }
  return r;
}

void emit_run(std::ostringstream& os, const CtrlRun& r) {
  os << "      \"" << cluster::approach_name(r.approach);
  if (r.shards > 1) os << "_s" << r.shards;
  os << "\": {\"vc_superstep_s\": " << rb::json_number(r.vc_superstep_s)
     << ", \"spin_latency_s\": " << rb::json_number(r.spin_latency_s)
     << ", \"llc_miss_rate\": " << rb::json_number(r.llc_miss_rate)
     << ", \"migrations\": " << r.migrations
     << ", \"events\": " << r.events
     << ", \"wall_s\": " << rb::json_number(r.wall_s) << "},\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "dev";
  std::string append_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--append" && i + 1 < argc) {
      append_path = argv[++i];
    } else if (a == "--quick") {
      quick = true;  // small cell, short windows: CI smoke on tiny runners
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label str] [--append BENCH_ctrl.json] "
                   "[--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const int nodes = quick ? 64 : 512;
  // The rebalancer observes one 30 ms accounting period per decision and
  // sits out ten after each move: the warmup must cover classifier + EWMA
  // convergence and the measure window tens of periods, so the placement
  // controller gets to act repeatedly rather than once.
  const sim::SimTime warmup = quick ? 300_ms : 1_s;
  const sim::SimTime measure = quick ? 600_ms : 2_s;

  const cluster::Approach approaches[] = {
      cluster::Approach::kCR, cluster::Approach::kATC,
      cluster::Approach::kPM, cluster::Approach::kATCPM};
  std::vector<CtrlRun> runs;
  for (cluster::Approach a : approaches) {
    std::fprintf(stderr, "ctrl_report: mixed%d %s...\n", nodes,
                 cluster::approach_name(a).c_str());
    runs.push_back(run_cell(a, /*shards=*/1, nodes, warmup, measure));
  }
  // The combined approach once more through the sharded engine (4 cells).
  std::fprintf(stderr, "ctrl_report: mixed%d ATC+PM s4...\n", nodes);
  runs.push_back(
      run_cell(cluster::Approach::kATCPM, /*shards=*/4, nodes, warmup,
               measure));

  std::ostringstream run;
  run << "    {\n"
      << "      \"label\": \"" << label << "\",\n"
      << "      \"date\": \"" << rb::iso_now() << "\",\n"
      << "      \"build_type\": \"" << ATCSIM_BUILD_TYPE << "\",\n"
      << "      \"host_cores\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "      \"nodes\": " << nodes << ",\n"
      << "      \"sim_ms\": " << (warmup + measure) / 1'000'000 << ",\n"
      << "      \"methodology\": \"mixed trace-synthesized cell; metrics "
         "from the post-warmup window; vs_cr normalizes each approach's "
         "mean VC superstep to the CR baseline (CR = 1, smaller is "
         "better); the _s4 point runs the same cell through the sharded "
         "engine with cell-local rebalancing\",\n";
  for (const CtrlRun& r : runs) emit_run(run, r);
  const double cr = runs.front().vc_superstep_s;
  run << "      \"vs_cr\": {";
  for (std::size_t i = 1; i < runs.size(); ++i) {
    run << (i > 1 ? ", " : "") << "\""
        << cluster::approach_name(runs[i].approach)
        << (runs[i].shards > 1 ? "_s" + std::to_string(runs[i].shards) : "")
        << "\": "
        << rb::json_number(cr > 0 ? runs[i].vc_superstep_s / cr : 0);
  }
  run << "}\n    }";

  if (append_path.empty()) {
    std::printf("%s\n", run.str().c_str());
    return 0;
  }
  rb::append_history(append_path, run.str(), "ctrl");
  std::printf("ctrl_report: appended run \"%s\" to %s\n", label.c_str(),
              append_path.c_str());
  return 0;
}
