// sched_report: tracked performance trajectory for the credit-scheduler run
// queues at cluster scale.
//
// The paper's sweeps execute run-queue operations billions of times (every
// dispatch, wake, block, steal and refill goes through them), so the
// scheduler rewrite keeps a before/after record the same way the event core
// does.  Two kinds of benchmark:
//
//  * rq_*: the place/enqueue/pick operation profile of CreditScheduler,
//    replayed over both run-queue structures — sched::LinearRunQueues (the
//    pre-rewrite linear-scan implementation, preserved verbatim in
//    run_queue_ref.h) and sched::IndexedRunQueues (the O(1)-membership
//    rewrite) — at 512- and 1024-node scale.  Identical op sequences; the
//    drain fingerprints are cross-checked so the two structures provably
//    did the same work.  "speedup_*" = indexed / linear ops per second.
//
//  * macro_cluster512_atc: a full 512-node end-to-end simulation (engine,
//    network, ATC controllers) measuring simulator events per wall second
//    with the indexed scheduler in the loop.
//
//   sched_report                        # print the run record to stdout
//   sched_report --label x --append ../BENCH_sched.json
//   sched_report --quick               # 512-node op replay only (CI smoke)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/scenario.h"
#include "cluster/scenarios.h"
#include "report_common.h"
#include "sched/run_queue.h"
#include "sched/run_queue_ref.h"
#include "simcore/rng.h"
#include "simcore/simulation.h"
#include "virt/platform.h"
#include "virt/vcpu.h"
#include "virt/vm.h"

namespace {

using namespace atcsim;
namespace rb = atcsim::bench;
using rb::Result;
using virt::CreditPrio;
using virt::Vcpu;
using namespace sim::time_literals;

// ------------------------------------------------------- op-trace replay ---

// Node shape for the replay: the paper's evaluation platform (8 PCPUs,
// 8-VCPU parallel VMs + dom0 per node) at a consolidation ratio deep enough
// that queues carry realistic depth.
constexpr int kPcpus = 8;
constexpr int kGuestVms = 8;
constexpr int kVcpusPerVm = 8;
constexpr double kDeadBand = 30.0;

/// One node's worth of VCPUs, shared by both models (run sequentially; each
/// replay drains its structure, which resets every intrusive link).  VCPU
/// ids are dense creation-order indices, so `cls[v.id().index()]` is the
/// O(1) side array holding each VCPU's insertion class.
struct NodeFixture {
  sim::Simulation simulation;
  std::unique_ptr<virt::Platform> platform;
  std::vector<Vcpu*> vcpus;
  std::vector<CreditPrio> cls;  // insertion class, indexed by VCPU id

  NodeFixture() {
    virt::PlatformConfig pc;
    pc.nodes = 1;
    pc.pcpus_per_node = kPcpus;
    platform = std::make_unique<virt::Platform>(simulation, pc);
    for (int i = 0; i < kGuestVms; ++i) {
      platform->create_vm(virt::NodeId{0}, virt::VmType::kParallel,
                          "vm" + std::to_string(i), kVcpusPerVm);
    }
    virt::Node& node = platform->node(virt::NodeId{0});
    for (std::size_t i = 0; i < node.vms().size(); ++i) {
      for (auto& v : node.vms()[i]->vcpus()) {
        v->sched().rq.vm = static_cast<std::int32_t>(i);
        vcpus.push_back(v.get());
        cls.push_back(CreditPrio::kUnder);
      }
    }
  }
  std::size_t vm_count() const {
    return platform->node(virt::NodeId{0}).vms().size();
  }
  CreditPrio cls_of(const Vcpu& v) const { return cls[v.id().index()]; }
};

/// Uniform adapter over the two structures.  IndexedRunQueues maintains the
/// intrusive membership handle itself; for LinearRunQueues the adapter sets
/// the `rq.queue` flag (the historical scheduler knew queued-ness from its
/// own state) so the replay's wake/block logic reads membership the same
/// O(1) way for both — the comparison measures the queue operations, not
/// membership bookkeeping.
struct IndexedModel {
  sched::IndexedRunQueues q;
  void init(std::size_t queues, std::size_t vms) { q.init(queues, vms); }
  void insert(const NodeFixture&, Vcpu& v, int qi, CreditPrio cls) {
    q.insert(v, qi, cls, kDeadBand);
  }
  void erase(Vcpu& v) { q.erase(v); }
  Vcpu* front(int qi) const { return q.front(qi); }
  Vcpu* pop_front(int qi) { return q.pop_front(qi); }
  std::size_t depth(int qi) const { return q.depth(qi); }
  int queued_of_vm(int qi, int vm) const { return q.queued_of_vm(qi, vm); }
  void rebucket(const NodeFixture& fx) {
    q.rebucket([&fx](const Vcpu& w) { return fx.cls_of(w); });
  }
};

struct LinearModel {
  sched::LinearRunQueues q;
  void init(std::size_t queues, std::size_t vms) { q.init(queues, vms); }
  void insert(const NodeFixture& fx, Vcpu& v, int qi, CreditPrio cls) {
    q.insert(v, qi, cls, kDeadBand,
             [&fx](const Vcpu& w) { return fx.cls_of(w); });
    v.sched().rq.queue = qi;
  }
  void erase(Vcpu& v) {
    q.erase(v);
    v.sched().rq.queue = -1;
  }
  Vcpu* front(int qi) const { return q.front(qi); }
  Vcpu* pop_front(int qi) {
    Vcpu* v = q.pop_front(qi);
    v->sched().rq.queue = -1;
    return v;
  }
  std::size_t depth(int qi) const { return q.depth(qi); }
  int queued_of_vm(int qi, int vm) const { return q.queued_of_vm(qi, vm); }
  void rebucket(const NodeFixture& fx) {
    q.rebucket([&fx](const Vcpu& w) { return fx.cls_of(w); });
  }
};

CreditPrio random_class(sim::Rng& rng) {
  const double r = rng.next_double();
  if (r < 0.15) return CreditPrio::kBoost;
  if (r < 0.60) return CreditPrio::kUnder;
  if (r < 0.95) return CreditPrio::kOver;
  return CreditPrio::kParked;
}

/// Replays `nodes` nodes' worth of the scheduler's operation profile over
/// one model; returns (ops executed, drain fingerprint).  Per simulated
/// node: rounds of Balance placement (the O(P) vs O(P*n) sibling-count
/// key), per-queue pick/pop with work stealing (targeted erase from a
/// remote queue), wake enqueues, block-time targeted removals, and a
/// credit refill + rebucket — the same op mix CreditScheduler issues per
/// accounting period.
template <typename Model>
std::pair<std::uint64_t, std::uint64_t> replay(Model& m, NodeFixture& fx,
                                               int nodes) {
  std::uint64_t ops = 0;
  std::uint64_t fingerprint = 0;
  for (int n = 0; n < nodes; ++n) {
    sim::Rng rng(static_cast<std::uint64_t>(n) * 7919 + 17);
    m.init(kPcpus, fx.vm_count());
    for (Vcpu* v : fx.vcpus) v->sched().credits = rng.uniform(-150.0, 150.0);

    constexpr int kRounds = 8;
    for (int round = 0; round < kRounds; ++round) {
      // Wake storm: Balance-place every unqueued VCPU (fewest same-VM
      // siblings, then shallowest queue — CreditScheduler::place's
      // kBalance key).
      for (std::size_t i = 0; i < fx.vcpus.size(); ++i) {
        Vcpu& v = *fx.vcpus[i];
        if (v.sched().rq.queue >= 0) continue;
        int best = 0;
        long best_key = (1L << 40);
        for (int qi = 0; qi < kPcpus; ++qi) {
          const long key =
              (static_cast<long>(m.queued_of_vm(qi, v.sched().rq.vm))
               << 20) +
              static_cast<long>(m.depth(qi));
          if (key < best_key) {
            best_key = key;
            best = qi;
          }
        }
        fx.cls[v.id().index()] = random_class(rng);
        m.insert(fx, v, best, fx.cls[v.id().index()]);
        ++ops;
      }
      // Dispatch sweep with work stealing: each queue pops its front; an
      // empty queue steals from the deepest sibling.  Popped VCPUs take an
      // off-queue credit debit (the deschedule-time charge).
      for (int qi = 0; qi < kPcpus; ++qi) {
        Vcpu* got = m.front(qi) != nullptr ? m.pop_front(qi) : nullptr;
        if (got == nullptr) {
          int deepest = -1;
          std::size_t depth = 0;
          for (int oq = 0; oq < kPcpus; ++oq) {
            if (m.depth(oq) > depth) {
              depth = m.depth(oq);
              deepest = oq;
            }
          }
          if (deepest >= 0) got = m.pop_front(deepest);
        }
        ++ops;
        if (got != nullptr) {
          fingerprint = fingerprint * 31 +
                        static_cast<std::uint64_t>(got->id().value) + 1;
          got->sched().credits -= rng.uniform(0.0, 40.0);
        }
      }
      // Block-time targeted removals (the old erase scanned every queue).
      for (std::size_t i = 0; i < fx.vcpus.size(); i += 5) {
        Vcpu& v = *fx.vcpus[i];
        if (v.sched().rq.queue >= 0 && rng.next_double() < 0.5) {
          m.erase(v);
          ++ops;
        }
      }
      // Credit refill: every accounting period mutates all balances and
      // classes, then resorts each queue (the old resort_queues()).
      if (round % 4 == 3) {
        for (Vcpu* v : fx.vcpus) {
          v->sched().credits += rng.uniform(-50.0, 120.0);
          fx.cls[v->id().index()] = random_class(rng);
        }
        m.rebucket(fx);
        ++ops;
      }
    }
    // Drain, folding pick order into the fingerprint.
    for (int qi = 0; qi < kPcpus; ++qi) {
      while (m.front(qi) != nullptr) {
        fingerprint = fingerprint * 31 +
                      static_cast<std::uint64_t>(
                          m.pop_front(qi)->id().value) +
                      1;
        ++ops;
      }
    }
  }
  return {ops, fingerprint};
}

template <typename Model>
Result bench_replay(NodeFixture& fx, int nodes, std::uint64_t* fingerprint) {
  Model m;
  return rb::bench(3, [&]() -> std::uint64_t {
    auto result = replay(m, fx, nodes);
    *fingerprint = result.second;
    return result.first;
  });
}

// ------------------------------------------------------- full-sim macro ---

/// End-to-end 512-node type-A cluster under ATC: the cluster-scale sweep
/// cell the indexed run queues exist for, with the whole model in the loop.
/// `shards` > 1 runs the same macro through the conservative-PDES path.
Result macro_cluster512(int shards) {
  return rb::bench(2, [shards]() -> std::uint64_t {
    auto s = cluster::ScenarioBuilder{}
                 .nodes(512)
                 .pcpus_per_node(8)
                 .vms_per_node(4)
                 .vcpus_per_vm(8)
                 .approach(cluster::Approach::kATC)
                 .seed(7)
                 .shards(shards)
                 .build();
    cluster::build_type_a(*s, "lu", workload::NpbClass::kB);
    s->start();
    s->run_for(250_ms);
    return s->events_executed();
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "dev";
  std::string append_path;
  bool quick = false;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--append" && i + 1 < argc) {
      append_path = argv[++i];
    } else if (a == "--quick") {
      quick = true;  // 512-node op replay only (CI smoke on tiny runners)
    } else if (a == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);  // macro cell PDES shard count
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label str] [--append BENCH_sched.json] "
                   "[--quick] [--shards K]\n",
                   argv[0]);
      return 2;
    }
  }

  NodeFixture fx;
  std::uint64_t fp_lin = 0, fp_idx = 0;

  std::fprintf(stderr, "sched_report: rq_linear_n512...\n");
  const Result lin512 = bench_replay<LinearModel>(fx, 512, &fp_lin);
  std::fprintf(stderr, "sched_report: rq_indexed_n512...\n");
  const Result idx512 = bench_replay<IndexedModel>(fx, 512, &fp_idx);
  if (fp_lin != fp_idx) {
    std::fprintf(stderr,
                 "sched_report: FINGERPRINT MISMATCH at 512 nodes "
                 "(%llu vs %llu) — structures diverged\n",
                 static_cast<unsigned long long>(fp_lin),
                 static_cast<unsigned long long>(fp_idx));
    return 1;
  }

  Result lin1024, idx1024, macro512;
  if (!quick) {
    std::fprintf(stderr, "sched_report: rq_linear_n1024...\n");
    lin1024 = bench_replay<LinearModel>(fx, 1024, &fp_lin);
    std::fprintf(stderr, "sched_report: rq_indexed_n1024...\n");
    idx1024 = bench_replay<IndexedModel>(fx, 1024, &fp_idx);
    if (fp_lin != fp_idx) {
      std::fprintf(stderr, "sched_report: FINGERPRINT MISMATCH at 1024\n");
      return 1;
    }
    std::fprintf(stderr, "sched_report: macro_cluster512_atc...\n");
    macro512 = macro_cluster512(shards);
  }

  std::ostringstream run;
  run << "    {\n"
      << "      \"label\": \"" << label << "\",\n"
      << "      \"date\": \"" << rb::iso_now() << "\",\n"
      << "      \"build_type\": \"" << ATCSIM_BUILD_TYPE << "\",\n";
  rb::emit_result(run, "rq_linear_n512", lin512);
  rb::emit_result(run, "rq_indexed_n512", idx512);
  run << "      \"speedup_n512\": "
      << rb::json_number(idx512.per_sec / lin512.per_sec)
      << (quick ? "\n" : ",\n");
  if (!quick) {
    rb::emit_result(run, "rq_linear_n1024", lin1024);
    rb::emit_result(run, "rq_indexed_n1024", idx1024);
    run << "      \"speedup_n1024\": "
        << rb::json_number(idx1024.per_sec / lin1024.per_sec) << ",\n";
    rb::emit_result(run, "macro_cluster512_atc", macro512, true);
  }
  run << "    }";

  if (append_path.empty()) {
    std::printf("%s\n", run.str().c_str());
    return 0;
  }
  rb::append_history(append_path, run.str(), "sched");
  std::fprintf(stderr, "sched_report: wrote %s\n", append_path.c_str());
  return 0;
}
