// Shared scaffolding for every bench binary: the figure-harness wrapper
// (scale/banner/slice helpers re-exported from the experiment-runner
// library) plus, for the tracked perf-report binaries (perf_report,
// sched_report, net_report, pdes_report), a global operator-new allocation
// counter, the best-of-N bench harness, and the JSON run-record /
// history-append emitters.
//
// This header DEFINES the replacement global operator new/delete (they may
// not be inline, per [replacement.functions]), so it must be included from
// exactly one translation unit per binary.  Every bench is a single-TU
// executable, which is what makes this layout workable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "cluster/scenario.h"
#include "cluster/scenarios.h"
#include "exp/bench_util.h"
#include "exp/emit.h"
#include "exp/runner.h"
#include "metrics/report.h"

namespace atcsim::bench {
inline std::atomic<std::uint64_t> g_allocs{0};
}  // namespace atcsim::bench

void* operator new(std::size_t n) {
  atcsim::bench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace atcsim::bench {

using namespace sim::time_literals;

using exp::banner;
using exp::scale_factor;
using exp::scaled;
using exp::set_global_guest_slice;

using Clock = std::chrono::steady_clock;

struct Result {
  std::uint64_t events = 0;      // work items per repetition
  double wall_s = 0;             // best-of-N wall seconds
  double per_sec = 0;            // events / wall_s
  double allocs_per_event = 0;   // heap allocations per event, best rep
};

/// Runs `body` (which returns the number of work items processed) `reps`
/// times after one untimed warmup, keeping the fastest repetition.
template <typename Body>
Result bench(int reps, Body&& body) {
  (void)body();  // warmup: populate slabs, fault in pages
  Result r;
  r.wall_s = 1e100;
  for (int i = 0; i < reps; ++i) {
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    const std::uint64_t n = body();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    if (s < r.wall_s) {
      r.wall_s = s;
      r.events = n;
      r.allocs_per_event =
          n == 0 ? 0 : static_cast<double>(allocs) / static_cast<double>(n);
    }
  }
  r.per_sec = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  return r;
}

inline std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline void emit_result(std::ostringstream& os, const char* name,
                        const Result& r, bool last = false) {
  os << "      \"" << name << "\": {\"per_sec\": " << json_number(r.per_sec)
     << ", \"events\": " << r.events
     << ", \"wall_s\": " << json_number(r.wall_s)
     << ", \"allocs_per_event\": " << json_number(r.allocs_per_event) << "}"
     << (last ? "\n" : ",\n");
}

inline std::string iso_now() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Appends `record` into the history array of `path` (creating the file
/// with the given `suite` name when missing).  The file is always written
/// by these tools, so the closing "  ]\n}" marker is structural; when it is
/// missing the file is rewritten from scratch.
inline void append_history(const std::string& path, const std::string& record,
                           const char* suite) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  const std::string tail = "\n  ]\n}\n";
  std::string out;
  const std::size_t at = existing.rfind(tail);
  if (!existing.empty() && at != std::string::npos) {
    out = existing.substr(0, at) + ",\n" + record + tail;
  } else {
    out = std::string("{\n  \"schema\": 1,\n  \"suite\": \"") + suite +
          "\",\n  \"history\": [\n" + record + tail;
  }
  std::ofstream of(path, std::ios::trunc);
  of << out;
}

}  // namespace atcsim::bench

#ifndef ATCSIM_BUILD_TYPE
#define ATCSIM_BUILD_TYPE "unknown"
#endif
