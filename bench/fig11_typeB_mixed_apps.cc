// Figure 11 (+ Table I): evaluation type B — mixed parallel applications on
// virtual clusters synthesized from the LLNL Atlas trace.
//
// 32 nodes, 128 8-VCPU VMs: ten virtual clusters (256..16 VCPUs, Table I
// proportions) each running a random NPB class-B code, the remaining 30 VMs
// independent (lu/is).  Paper shape (VC1/sp example): ATC 0.25, DSS 0.45,
// CS 0.49, BS 0.90, CR 1.
#include "report_common.h"
#include "cluster/trace.h"

using namespace atcsim;
using namespace atcsim::bench;

namespace {

struct Run {
  std::vector<std::string> keys;
  std::vector<double> means;  // per key
};

Run run(cluster::Approach a) {
  auto sp = cluster::ScenarioBuilder{}
                .nodes(32)
                .approach(a)
                .seed(42)
                .build();
  cluster::Scenario& s = *sp;
  const cluster::TypeBLayout layout = cluster::build_type_b(s);
  s.start();
  s.warmup_and_measure(scaled(2_s), scaled(5_s));
  Run r;
  r.keys = layout.vc_keys;
  // Report two independent VMs as well, as the paper does.
  r.keys.push_back(layout.independent_keys[0]);
  r.keys.push_back(layout.independent_keys[1]);
  for (const auto& key : r.keys) r.means.push_back(s.mean_superstep(key));
  return r;
}

}  // namespace

int main() {
  banner("Figure 11 — type B: trace-synthesized virtual clusters",
         "32 nodes, 128 VMs, ten VCs per Table I + independent VMs");

  metrics::Table t1("Table I: Atlas VC-size distribution (S=VCPUs, P=share)",
                    {"S", "P"});
  for (const auto& b : cluster::atlas_table1()) {
    t1.add_row({b.vcpus > 0 ? std::to_string(b.vcpus) : "others",
                metrics::fmt(b.percent, 1) + "%"});
  }
  t1.print(std::cout);

  const std::vector<cluster::Approach> approaches = {
      cluster::Approach::kBS, cluster::Approach::kCS, cluster::Approach::kDSS,
      cluster::Approach::kATC};
  const Run cr = run(cluster::Approach::kCR);
  std::vector<Run> results;
  results.reserve(approaches.size());
  for (cluster::Approach a : approaches) results.push_back(run(a));

  metrics::Table t("Fig. 11: normalized exec time per virtual cluster vs CR",
                   {"cluster", "BS", "CS", "DSS", "ATC"});
  for (std::size_t k = 0; k < cr.keys.size(); ++k) {
    std::vector<std::string> row = {cr.keys[k]};
    for (const Run& r : results) {
      row.push_back(cr.means[k] > 0 ? metrics::fmt(r.means[k] / cr.means[k])
                                    : "n/a");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("expected shape per VC: ATC < DSS ~ CS < BS <= CR "
              "(paper VC1/sp: 0.25 / 0.45 / 0.49 / 0.90)\n");
  return 0;
}
