#!/usr/bin/env python3
"""Informational performance guard over a bench history JSON.

Usage:
    perf_guard.py BENCH_pdes.json [--key macro_lu512_s1 ...]
                  [--metric per_sec] [--threshold 0.20]

Takes a bench history file (schema 1: {"history": [run, run, ...]}) where
the FRESH run — appended by the report binary moments earlier — is the last
entry.  For every requested key (default: every "macro_*" object in the
fresh entry that carries the metric), finds the most recent EARLIER entry
containing the same key (the committed baseline) and compares the metric.
A relative drop beyond the threshold emits a GitHub Actions `::warning`
annotation.

The guard never turns the job red: it always exits 0 apart from CLI misuse.
CI runners are noisy and heterogeneous (the committed baselines may come
from a different host class — entries record host_cores), so a drop here is
a nudge to re-measure on quiet hardware, not a verdict.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("history", help="bench history JSON (e.g. BENCH_pdes.json)")
    ap.add_argument("--key", action="append", default=[],
                    help="benchmark key(s) to check; default: every macro_* "
                         "key present in the freshest entry")
    ap.add_argument("--metric", default="per_sec")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative drop that triggers a warning (0.20 = 20%%)")
    args = ap.parse_args()

    try:
        with open(args.history, encoding="utf-8") as f:
            history = json.load(f).get("history", [])
    except (OSError, ValueError) as e:
        print(f"perf_guard: cannot read {args.history}: {e} (informational "
              "guard; not failing the job)")
        return 0
    if len(history) < 2:
        print("perf_guard: fewer than two history entries; nothing to compare")
        return 0

    fresh = history[-1]
    keys = args.key or sorted(
        k for k, v in fresh.items()
        if k.startswith("macro_") and isinstance(v, dict) and args.metric in v)
    if not keys:
        print(f"perf_guard: no comparable keys in the freshest entry "
              f"({fresh.get('label', '?')})")
        return 0

    warned = 0
    for key in keys:
        cell = fresh.get(key)
        if not isinstance(cell, dict) or args.metric not in cell:
            print(f"perf_guard: {key}: absent from the freshest entry; skipped")
            continue
        base = next((e for e in reversed(history[:-1])
                     if isinstance(e.get(key), dict)
                     and args.metric in e[key]), None)
        if base is None:
            print(f"perf_guard: {key}: no earlier entry carries it; skipped")
            continue
        base_v = float(base[key][args.metric])
        fresh_v = float(cell[args.metric])
        if base_v <= 0:
            print(f"perf_guard: {key}: non-positive baseline; skipped")
            continue
        drop = (base_v - fresh_v) / base_v
        line = (f"{key}.{args.metric}: {fresh_v:.6g} vs baseline "
                f"{base_v:.6g} ('{base.get('label', '?')}', "
                f"host_cores={base.get('host_cores', '?')}) — "
                f"{'-' if drop >= 0 else '+'}{abs(drop):.1%}")
        if drop > args.threshold:
            print(f"::warning title=perf_guard {key}::{line} exceeds the "
                  f"{args.threshold:.0%} drop threshold (informational; "
                  "re-measure on quiet hardware before acting)")
            warned += 1
        else:
            print(f"perf_guard: {line}")
    print(f"perf_guard: {warned} warning(s) over {len(keys)} key(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
