file(REMOVE_RECURSE
  "CMakeFiles/mixed_tenancy.dir/mixed_tenancy.cc.o"
  "CMakeFiles/mixed_tenancy.dir/mixed_tenancy.cc.o.d"
  "mixed_tenancy"
  "mixed_tenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_tenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
