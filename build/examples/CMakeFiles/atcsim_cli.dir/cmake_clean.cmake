file(REMOVE_RECURSE
  "CMakeFiles/atcsim_cli.dir/atcsim_cli.cc.o"
  "CMakeFiles/atcsim_cli.dir/atcsim_cli.cc.o.d"
  "atcsim_cli"
  "atcsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
