# Empty compiler generated dependencies file for atcsim_cli.
# This may be replaced when dependencies are built.
