
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/virtual_cluster_scaling.cc" "examples/CMakeFiles/virtual_cluster_scaling.dir/virtual_cluster_scaling.cc.o" "gcc" "examples/CMakeFiles/virtual_cluster_scaling.dir/virtual_cluster_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/atcsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/atcsim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/atcsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/atcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/atcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/atc/CMakeFiles/atcsim_atc.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/atcsim_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/xenctl/CMakeFiles/atcsim_xenctl.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/atcsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/atcsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/atcsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
