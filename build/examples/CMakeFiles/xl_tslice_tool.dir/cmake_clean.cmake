file(REMOVE_RECURSE
  "CMakeFiles/xl_tslice_tool.dir/xl_tslice_tool.cc.o"
  "CMakeFiles/xl_tslice_tool.dir/xl_tslice_tool.cc.o.d"
  "xl_tslice_tool"
  "xl_tslice_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_tslice_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
