# Empty compiler generated dependencies file for xl_tslice_tool.
# This may be replaced when dependencies are built.
