# Empty dependencies file for fig11_typeB_mixed_apps.
# This may be replaced when dependencies are built.
