file(REMOVE_RECURSE
  "CMakeFiles/fig09_nonparallel_tslice.dir/fig09_nonparallel_tslice.cc.o"
  "CMakeFiles/fig09_nonparallel_tslice.dir/fig09_nonparallel_tslice.cc.o.d"
  "fig09_nonparallel_tslice"
  "fig09_nonparallel_tslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nonparallel_tslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
