# Empty dependencies file for fig09_nonparallel_tslice.
# This may be replaced when dependencies are built.
