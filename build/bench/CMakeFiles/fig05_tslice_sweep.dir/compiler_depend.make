# Empty compiler generated dependencies file for fig05_tslice_sweep.
# This may be replaced when dependencies are built.
