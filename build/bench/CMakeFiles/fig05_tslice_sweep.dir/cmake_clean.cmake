file(REMOVE_RECURSE
  "CMakeFiles/fig05_tslice_sweep.dir/fig05_tslice_sweep.cc.o"
  "CMakeFiles/fig05_tslice_sweep.dir/fig05_tslice_sweep.cc.o.d"
  "fig05_tslice_sweep"
  "fig05_tslice_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_tslice_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
