file(REMOVE_RECURSE
  "CMakeFiles/fig08_inflection.dir/fig08_inflection.cc.o"
  "CMakeFiles/fig08_inflection.dir/fig08_inflection.cc.o.d"
  "fig08_inflection"
  "fig08_inflection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_inflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
