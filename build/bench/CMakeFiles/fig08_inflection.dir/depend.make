# Empty dependencies file for fig08_inflection.
# This may be replaced when dependencies are built.
