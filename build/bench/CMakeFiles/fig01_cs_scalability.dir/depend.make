# Empty dependencies file for fig01_cs_scalability.
# This may be replaced when dependencies are built.
