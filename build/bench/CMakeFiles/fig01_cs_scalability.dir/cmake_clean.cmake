file(REMOVE_RECURSE
  "CMakeFiles/fig01_cs_scalability.dir/fig01_cs_scalability.cc.o"
  "CMakeFiles/fig01_cs_scalability.dir/fig01_cs_scalability.cc.o.d"
  "fig01_cs_scalability"
  "fig01_cs_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cs_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
