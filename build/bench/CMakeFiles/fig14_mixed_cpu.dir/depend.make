# Empty dependencies file for fig14_mixed_cpu.
# This may be replaced when dependencies are built.
