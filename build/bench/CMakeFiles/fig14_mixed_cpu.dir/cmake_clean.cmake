file(REMOVE_RECURSE
  "CMakeFiles/fig14_mixed_cpu.dir/fig14_mixed_cpu.cc.o"
  "CMakeFiles/fig14_mixed_cpu.dir/fig14_mixed_cpu.cc.o.d"
  "fig14_mixed_cpu"
  "fig14_mixed_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mixed_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
