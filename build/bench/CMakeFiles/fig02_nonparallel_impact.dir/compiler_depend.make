# Empty compiler generated dependencies file for fig02_nonparallel_impact.
# This may be replaced when dependencies are built.
