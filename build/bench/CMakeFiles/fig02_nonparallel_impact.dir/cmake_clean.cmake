file(REMOVE_RECURSE
  "CMakeFiles/fig02_nonparallel_impact.dir/fig02_nonparallel_impact.cc.o"
  "CMakeFiles/fig02_nonparallel_impact.dir/fig02_nonparallel_impact.cc.o.d"
  "fig02_nonparallel_impact"
  "fig02_nonparallel_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_nonparallel_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
