# Empty dependencies file for fig10_typeA_same_apps.
# This may be replaced when dependencies are built.
