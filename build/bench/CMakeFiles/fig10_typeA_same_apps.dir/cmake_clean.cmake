file(REMOVE_RECURSE
  "CMakeFiles/fig10_typeA_same_apps.dir/fig10_typeA_same_apps.cc.o"
  "CMakeFiles/fig10_typeA_same_apps.dir/fig10_typeA_same_apps.cc.o.d"
  "fig10_typeA_same_apps"
  "fig10_typeA_same_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_typeA_same_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
