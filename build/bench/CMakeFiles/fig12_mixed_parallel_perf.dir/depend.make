# Empty dependencies file for fig12_mixed_parallel_perf.
# This may be replaced when dependencies are built.
