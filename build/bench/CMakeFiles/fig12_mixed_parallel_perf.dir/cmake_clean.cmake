file(REMOVE_RECURSE
  "CMakeFiles/fig12_mixed_parallel_perf.dir/fig12_mixed_parallel_perf.cc.o"
  "CMakeFiles/fig12_mixed_parallel_perf.dir/fig12_mixed_parallel_perf.cc.o.d"
  "fig12_mixed_parallel_perf"
  "fig12_mixed_parallel_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mixed_parallel_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
