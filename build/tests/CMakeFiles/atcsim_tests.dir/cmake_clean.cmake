file(REMOVE_RECURSE
  "CMakeFiles/atcsim_tests.dir/atc_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/atc_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/bsp_rounds_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/bsp_rounds_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/cluster_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/cluster_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/engine_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/engine_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/extensions_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/integration_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/metrics_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/metrics_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/net_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/net_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/sched_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/sched_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/simcore_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/simcore_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/workload_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/workload_test.cc.o.d"
  "CMakeFiles/atcsim_tests.dir/xenctl_test.cc.o"
  "CMakeFiles/atcsim_tests.dir/xenctl_test.cc.o.d"
  "atcsim_tests"
  "atcsim_tests.pdb"
  "atcsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
