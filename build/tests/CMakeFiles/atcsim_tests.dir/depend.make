# Empty dependencies file for atcsim_tests.
# This may be replaced when dependencies are built.
