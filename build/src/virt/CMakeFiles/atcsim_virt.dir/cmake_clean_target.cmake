file(REMOVE_RECURSE
  "libatcsim_virt.a"
)
