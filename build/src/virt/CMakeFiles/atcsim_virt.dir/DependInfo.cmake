
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/engine.cc" "src/virt/CMakeFiles/atcsim_virt.dir/engine.cc.o" "gcc" "src/virt/CMakeFiles/atcsim_virt.dir/engine.cc.o.d"
  "/root/repo/src/virt/platform.cc" "src/virt/CMakeFiles/atcsim_virt.dir/platform.cc.o" "gcc" "src/virt/CMakeFiles/atcsim_virt.dir/platform.cc.o.d"
  "/root/repo/src/virt/sync_event.cc" "src/virt/CMakeFiles/atcsim_virt.dir/sync_event.cc.o" "gcc" "src/virt/CMakeFiles/atcsim_virt.dir/sync_event.cc.o.d"
  "/root/repo/src/virt/vm.cc" "src/virt/CMakeFiles/atcsim_virt.dir/vm.cc.o" "gcc" "src/virt/CMakeFiles/atcsim_virt.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/atcsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
