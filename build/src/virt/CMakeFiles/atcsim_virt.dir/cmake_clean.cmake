file(REMOVE_RECURSE
  "CMakeFiles/atcsim_virt.dir/engine.cc.o"
  "CMakeFiles/atcsim_virt.dir/engine.cc.o.d"
  "CMakeFiles/atcsim_virt.dir/platform.cc.o"
  "CMakeFiles/atcsim_virt.dir/platform.cc.o.d"
  "CMakeFiles/atcsim_virt.dir/sync_event.cc.o"
  "CMakeFiles/atcsim_virt.dir/sync_event.cc.o.d"
  "CMakeFiles/atcsim_virt.dir/vm.cc.o"
  "CMakeFiles/atcsim_virt.dir/vm.cc.o.d"
  "libatcsim_virt.a"
  "libatcsim_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
