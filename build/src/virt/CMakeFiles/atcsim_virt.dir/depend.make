# Empty dependencies file for atcsim_virt.
# This may be replaced when dependencies are built.
