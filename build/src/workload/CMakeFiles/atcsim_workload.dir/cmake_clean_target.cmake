file(REMOVE_RECURSE
  "libatcsim_workload.a"
)
