# Empty compiler generated dependencies file for atcsim_workload.
# This may be replaced when dependencies are built.
