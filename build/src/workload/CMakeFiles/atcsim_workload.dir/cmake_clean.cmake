file(REMOVE_RECURSE
  "CMakeFiles/atcsim_workload.dir/apps.cc.o"
  "CMakeFiles/atcsim_workload.dir/apps.cc.o.d"
  "CMakeFiles/atcsim_workload.dir/bsp_app.cc.o"
  "CMakeFiles/atcsim_workload.dir/bsp_app.cc.o.d"
  "CMakeFiles/atcsim_workload.dir/npb_profiles.cc.o"
  "CMakeFiles/atcsim_workload.dir/npb_profiles.cc.o.d"
  "libatcsim_workload.a"
  "libatcsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
