# CMake generated Testfile for 
# Source directory: /root/repo/src/xenctl
# Build directory: /root/repo/build/src/xenctl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
