file(REMOVE_RECURSE
  "libatcsim_xenctl.a"
)
