file(REMOVE_RECURSE
  "CMakeFiles/atcsim_xenctl.dir/sim_backend.cc.o"
  "CMakeFiles/atcsim_xenctl.dir/sim_backend.cc.o.d"
  "CMakeFiles/atcsim_xenctl.dir/xl_backend.cc.o"
  "CMakeFiles/atcsim_xenctl.dir/xl_backend.cc.o.d"
  "libatcsim_xenctl.a"
  "libatcsim_xenctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_xenctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
