
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xenctl/sim_backend.cc" "src/xenctl/CMakeFiles/atcsim_xenctl.dir/sim_backend.cc.o" "gcc" "src/xenctl/CMakeFiles/atcsim_xenctl.dir/sim_backend.cc.o.d"
  "/root/repo/src/xenctl/xl_backend.cc" "src/xenctl/CMakeFiles/atcsim_xenctl.dir/xl_backend.cc.o" "gcc" "src/xenctl/CMakeFiles/atcsim_xenctl.dir/xl_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/atcsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/atcsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
