# Empty compiler generated dependencies file for atcsim_xenctl.
# This may be replaced when dependencies are built.
