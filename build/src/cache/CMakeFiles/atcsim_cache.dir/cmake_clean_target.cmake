file(REMOVE_RECURSE
  "libatcsim_cache.a"
)
