file(REMOVE_RECURSE
  "CMakeFiles/atcsim_cache.dir/xenoprof.cc.o"
  "CMakeFiles/atcsim_cache.dir/xenoprof.cc.o.d"
  "libatcsim_cache.a"
  "libatcsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
