# Empty dependencies file for atcsim_cache.
# This may be replaced when dependencies are built.
