# Empty compiler generated dependencies file for atcsim_atc.
# This may be replaced when dependencies are built.
