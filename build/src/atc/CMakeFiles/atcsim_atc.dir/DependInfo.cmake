
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atc/algorithm.cc" "src/atc/CMakeFiles/atcsim_atc.dir/algorithm.cc.o" "gcc" "src/atc/CMakeFiles/atcsim_atc.dir/algorithm.cc.o.d"
  "/root/repo/src/atc/classifier.cc" "src/atc/CMakeFiles/atcsim_atc.dir/classifier.cc.o" "gcc" "src/atc/CMakeFiles/atcsim_atc.dir/classifier.cc.o.d"
  "/root/repo/src/atc/controller.cc" "src/atc/CMakeFiles/atcsim_atc.dir/controller.cc.o" "gcc" "src/atc/CMakeFiles/atcsim_atc.dir/controller.cc.o.d"
  "/root/repo/src/atc/threshold.cc" "src/atc/CMakeFiles/atcsim_atc.dir/threshold.cc.o" "gcc" "src/atc/CMakeFiles/atcsim_atc.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/atcsim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/atcsim_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/atcsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
