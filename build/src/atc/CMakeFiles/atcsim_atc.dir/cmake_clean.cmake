file(REMOVE_RECURSE
  "CMakeFiles/atcsim_atc.dir/algorithm.cc.o"
  "CMakeFiles/atcsim_atc.dir/algorithm.cc.o.d"
  "CMakeFiles/atcsim_atc.dir/classifier.cc.o"
  "CMakeFiles/atcsim_atc.dir/classifier.cc.o.d"
  "CMakeFiles/atcsim_atc.dir/controller.cc.o"
  "CMakeFiles/atcsim_atc.dir/controller.cc.o.d"
  "CMakeFiles/atcsim_atc.dir/threshold.cc.o"
  "CMakeFiles/atcsim_atc.dir/threshold.cc.o.d"
  "libatcsim_atc.a"
  "libatcsim_atc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_atc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
