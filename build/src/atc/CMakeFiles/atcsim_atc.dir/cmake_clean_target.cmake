file(REMOVE_RECURSE
  "libatcsim_atc.a"
)
