file(REMOVE_RECURSE
  "CMakeFiles/atcsim_net.dir/network.cc.o"
  "CMakeFiles/atcsim_net.dir/network.cc.o.d"
  "libatcsim_net.a"
  "libatcsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
