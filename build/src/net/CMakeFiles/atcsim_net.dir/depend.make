# Empty dependencies file for atcsim_net.
# This may be replaced when dependencies are built.
