file(REMOVE_RECURSE
  "libatcsim_net.a"
)
