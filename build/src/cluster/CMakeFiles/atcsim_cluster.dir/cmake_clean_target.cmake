file(REMOVE_RECURSE
  "libatcsim_cluster.a"
)
