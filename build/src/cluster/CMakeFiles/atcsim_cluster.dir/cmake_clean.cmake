file(REMOVE_RECURSE
  "CMakeFiles/atcsim_cluster.dir/approach.cc.o"
  "CMakeFiles/atcsim_cluster.dir/approach.cc.o.d"
  "CMakeFiles/atcsim_cluster.dir/scenario.cc.o"
  "CMakeFiles/atcsim_cluster.dir/scenario.cc.o.d"
  "CMakeFiles/atcsim_cluster.dir/scenarios.cc.o"
  "CMakeFiles/atcsim_cluster.dir/scenarios.cc.o.d"
  "CMakeFiles/atcsim_cluster.dir/trace.cc.o"
  "CMakeFiles/atcsim_cluster.dir/trace.cc.o.d"
  "libatcsim_cluster.a"
  "libatcsim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
