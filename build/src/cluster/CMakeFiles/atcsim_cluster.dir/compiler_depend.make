# Empty compiler generated dependencies file for atcsim_cluster.
# This may be replaced when dependencies are built.
