# Empty dependencies file for atcsim_sync.
# This may be replaced when dependencies are built.
