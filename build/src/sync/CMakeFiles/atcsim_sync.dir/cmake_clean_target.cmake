file(REMOVE_RECURSE
  "libatcsim_sync.a"
)
