file(REMOVE_RECURSE
  "CMakeFiles/atcsim_sync.dir/period_monitor.cc.o"
  "CMakeFiles/atcsim_sync.dir/period_monitor.cc.o.d"
  "libatcsim_sync.a"
  "libatcsim_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
