file(REMOVE_RECURSE
  "CMakeFiles/atcsim_sched.dir/coschedule.cc.o"
  "CMakeFiles/atcsim_sched.dir/coschedule.cc.o.d"
  "CMakeFiles/atcsim_sched.dir/credit.cc.o"
  "CMakeFiles/atcsim_sched.dir/credit.cc.o.d"
  "CMakeFiles/atcsim_sched.dir/dss.cc.o"
  "CMakeFiles/atcsim_sched.dir/dss.cc.o.d"
  "libatcsim_sched.a"
  "libatcsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
