# Empty dependencies file for atcsim_sched.
# This may be replaced when dependencies are built.
