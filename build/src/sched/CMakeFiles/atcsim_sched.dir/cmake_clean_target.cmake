file(REMOVE_RECURSE
  "libatcsim_sched.a"
)
