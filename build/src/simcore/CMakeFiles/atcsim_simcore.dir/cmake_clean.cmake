file(REMOVE_RECURSE
  "CMakeFiles/atcsim_simcore.dir/event_queue.cc.o"
  "CMakeFiles/atcsim_simcore.dir/event_queue.cc.o.d"
  "CMakeFiles/atcsim_simcore.dir/log.cc.o"
  "CMakeFiles/atcsim_simcore.dir/log.cc.o.d"
  "CMakeFiles/atcsim_simcore.dir/parallel.cc.o"
  "CMakeFiles/atcsim_simcore.dir/parallel.cc.o.d"
  "CMakeFiles/atcsim_simcore.dir/rng.cc.o"
  "CMakeFiles/atcsim_simcore.dir/rng.cc.o.d"
  "CMakeFiles/atcsim_simcore.dir/simulation.cc.o"
  "CMakeFiles/atcsim_simcore.dir/simulation.cc.o.d"
  "CMakeFiles/atcsim_simcore.dir/stats.cc.o"
  "CMakeFiles/atcsim_simcore.dir/stats.cc.o.d"
  "libatcsim_simcore.a"
  "libatcsim_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
