# Empty dependencies file for atcsim_simcore.
# This may be replaced when dependencies are built.
