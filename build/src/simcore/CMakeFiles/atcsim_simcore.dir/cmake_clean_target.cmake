file(REMOVE_RECURSE
  "libatcsim_simcore.a"
)
