file(REMOVE_RECURSE
  "CMakeFiles/atcsim_metrics.dir/report.cc.o"
  "CMakeFiles/atcsim_metrics.dir/report.cc.o.d"
  "libatcsim_metrics.a"
  "libatcsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atcsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
