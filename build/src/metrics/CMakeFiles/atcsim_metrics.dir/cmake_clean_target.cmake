file(REMOVE_RECURSE
  "libatcsim_metrics.a"
)
