# Empty dependencies file for atcsim_metrics.
# This may be replaced when dependencies are built.
